(* Quickstart: a 10-node tribe running single-clan Sailfish on the paper's
   geo-distributed topology, with a client submitting transactions to the
   clan and waiting for fc+1 matching execution receipts.

     dune exec examples/quickstart.exe *)

open Clanbft
open Clanbft.Sim

let () =
  let n = 10 in

  (* 1. Size the clan: smallest committee with an honest majority except
     with probability < 1e-6, computed exactly (paper Eq. 1-2). For a toy
     n=10 tribe the analysis needs most of the tribe — clans shine as n
     grows (see Figure 1) — so this is purely illustrative. *)
  let threshold = Bigint.Rat.of_ints 1 1_000_000 in
  let nc =
    match Committee.min_clan_size ~n ~f:(Committee.default_f n) ~threshold () with
    | Some nc -> nc
    | None -> n
  in
  Printf.printf "clan size for n=%d at failure < 1e-6: %d\n" n nc;
  let clan = Committee.elect_balanced ~n ~nc in

  (* 2. Build the simulated world: engine, GCP topology (Table 1), network
     with per-node uplink bandwidth, keys. *)
  let engine = Engine.create () in
  let topology = Topology.gcp_table1 ~n in
  let net =
    Net.create ~engine ~topology ~config:Net.default_config
      ~size:(Msg.wire_size ~n)
      ~rng:(Util.Rng.create 42L) ()
  in
  let keychain = Crypto.Keychain.create ~seed:7L ~n in
  let config = Config.make ~n (Config.Single_clan clan) in
  Format.printf "%a@." Config.pp config;

  (* 3. A client that accepts a result once fc+1 clan members vouch for
     it. *)
  let client =
    Client.create ~engine ~config ~id:1
      ~on_complete:(fun txn ~latency ->
        Printf.printf "  txn %d accepted after %.1f ms\n" txn.Transaction.id
          (Time.to_ms latency))
      ()
  in

  (* 4. Replicas: consensus + mempool + execution, wired to the network.
     Execution receipts flow back to the client with the reverse one-way
     delay. *)
  let nodes =
    Array.init n (fun me ->
        Node.create ~me ~config ~keychain ~engine ~net
          ~on_txn_executed:(fun txn receipt ->
            Engine.schedule_after engine (Topology.one_way topology ~src:me ~dst:0)
              (fun () -> Client.deliver_response client ~executor:me txn receipt))
          ())
  in
  Array.iter Node.start nodes;

  (* 5. Submit a few transactions to clan proposers (clients only talk to
     the clan, §5) and run the simulation. *)
  let proposers = Array.of_list (Config.block_proposers config) in
  for i = 0 to 19 do
    Engine.schedule_at engine (Time.ms (float_of_int (100 * i))) (fun () ->
        let txn = Client.make_txn client () in
        Client.track client txn ~clan:0;
        ignore (Node.submit nodes.(proposers.(i mod Array.length proposers)) txn))
  done;
  Engine.run ~until:(Time.s 8.) engine;

  (* 6. Report. *)
  Printf.printf "\ncompleted %d/20 transactions, mean accept latency %.1f ms\n"
    (Client.completed client) (Client.mean_latency_ms client);
  Printf.printf "node 0: round=%d, ordered %d vertices, executed %d txns\n"
    (Sailfish.current_round (Node.consensus nodes.(0)))
    (Sailfish.committed_count (Node.consensus nodes.(0)))
    (Node.executed_txns nodes.(0));
  let inside = Execution.state_digest (Node.execution nodes.(clan.(0))) in
  let other = Execution.state_digest (Node.execution nodes.(clan.(1))) in
  Printf.printf "replicated state digests agree across the clan: %b\n"
    (Crypto.Digest32.equal inside other)
