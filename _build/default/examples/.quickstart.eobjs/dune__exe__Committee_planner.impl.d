examples/committee_planner.ml: Array Bigint Clanbft Committee List Printf Sys
