examples/byzantine_demo.mli:
