examples/byzantine_demo.ml: Array Block Clanbft Config Digest32 Engine Keychain List Msg Net Printf Sailfish String Time Topology Transaction Util Vertex
