examples/shared_sequencer.mli:
