examples/quickstart.ml: Array Bigint Clanbft Client Committee Config Crypto Engine Execution Format Msg Net Node Printf Sailfish Time Topology Transaction Util
