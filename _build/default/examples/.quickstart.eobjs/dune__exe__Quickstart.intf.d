examples/quickstart.mli:
