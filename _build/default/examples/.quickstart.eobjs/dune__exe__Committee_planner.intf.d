examples/committee_planner.mli:
