examples/shared_sequencer.ml: Array Clanbft Committee Config Crypto Engine Execution Format List Msg Net Node Printf String Time Topology Transaction Util Vertex
