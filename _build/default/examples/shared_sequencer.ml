(* Shared sequencer (paper §6.1): one multi-clan tribe orders transactions
   for two independent applications. Each application is served by its own
   clan — its transactions are disseminated and executed only there — while
   the whole tribe agrees on a single global order.

     dune exec examples/shared_sequencer.exe *)

open Clanbft
open Clanbft.Sim

let apps = [| "dex"; "game" |]

let () =
  let n = 12 in
  let engine = Engine.create () in
  let topology = Topology.gcp_table1 ~n in
  let net =
    Net.create ~engine ~topology ~config:Net.default_config
      ~size:(Msg.wire_size ~n) ~rng:(Util.Rng.create 11L) ()
  in
  let keychain = Crypto.Keychain.create ~seed:23L ~n in

  (* Two disjoint clans partition the tribe; clan c sequences app c. *)
  let clans = Committee.partition_balanced ~n ~q:2 in
  let config = Config.make ~n (Config.Multi_clan clans) in
  Format.printf "%a@." Config.pp config;
  Array.iteri
    (fun c members ->
      Printf.printf "app %-5s -> clan %d = [%s]\n" apps.(c) c
        (String.concat ";" (Array.to_list (Array.map string_of_int members))))
    clans;

  (* Each replica proposes blocks carrying its own app's transactions:
     proposer p belongs to clan (p mod 2), and clients of app c submit to
     clan c's members. *)
  let next_txn = ref 0 in
  let executed = Array.make 2 0 in
  let sequenced = ref [] in
  let nodes =
    Array.init n (fun me ->
        Node.create ~me ~config ~keychain ~engine ~net
          ~on_commit:(fun ~leader:_ vertices ->
            if me = 0 then
              (* Node 0 narrates the global sequence: every vertex is
                 ordered tribe-wide even though payloads stay clan-local. *)
              List.iter
                (fun (v : Vertex.t) ->
                  match Config.clan_of config v.source with
                  | Some c when List.length !sequenced < 12 ->
                      sequenced := (v.round, v.source, apps.(c)) :: !sequenced
                  | _ -> ())
                vertices)
          ~on_txn_executed:(fun _txn _receipt ->
            match Config.clan_of config me with
            | Some c -> executed.(c) <- executed.(c) + 1
            | None -> ())
          ())
  in
  Array.iter Node.start nodes;

  (* Clients: app "dex" is busier than app "game". *)
  let submit ~app_clan count =
    let members = clans.(app_clan) in
    for i = 1 to count do
      incr next_txn;
      let txn =
        Transaction.make ~id:!next_txn ~client:(100 + app_clan)
          ~created_at:(Engine.now engine) ()
      in
      ignore (Node.submit nodes.(members.(i mod Array.length members)) txn)
    done
  in
  for tick = 0 to 9 do
    Engine.schedule_at engine (Time.ms (float_of_int (200 * tick))) (fun () ->
        submit ~app_clan:0 8;
        submit ~app_clan:1 3)
  done;
  Engine.run ~until:(Time.s 6.) engine;

  Printf.printf "\nfirst ordered vertices (global sequence, tagged by app):\n";
  List.iter
    (fun (round, source, app) ->
      Printf.printf "  round %-3d proposer %-3d app %s\n" round source app)
    (List.rev !sequenced);
  Printf.printf "\nper-app executed transaction events (txn x clan member):\n";
  Array.iteri (fun c count -> Printf.printf "  %-5s: %d\n" apps.(c) count) executed;
  (* Each clan executes only its own app's payloads, yet the digest chains
     agree tribe-wide because remote blocks fold in by digest. *)
  let d0 = Execution.state_digest (Node.execution nodes.(clans.(0).(0))) in
  let d1 = Execution.state_digest (Node.execution nodes.(clans.(1).(0))) in
  Printf.printf "\ncross-clan ordering chains agree: %b\n" (Crypto.Digest32.equal d0 d1)
