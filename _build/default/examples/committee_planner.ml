(* Committee planner: the paper's statistical machinery as a standalone
   tool. Given a deployment size, print exact clan sizing options for
   single- and multi-clan operation at several security levels.

     dune exec examples/committee_planner.exe -- [n]      (default 300) *)

open Clanbft
module Rat = Bigint.Rat

let thresholds =
  [ ("1e-6", Rat.of_ints 1 1_000_000); ("1e-9", Rat.of_ints 1 1_000_000_000);
    ("2^-40", Rat.pow2 (-40)) ]

let () =
  let n =
    if Array.length Sys.argv > 1 then int_of_string Sys.argv.(1) else 300
  in
  let f = Committee.default_f n in
  Printf.printf "tribe: n = %d, f = %d (quorum %d)\n\n" n f ((2 * f) + 1);

  Printf.printf "single clan (paper Eq. 1-2): minimum clan size\n";
  List.iter
    (fun (label, threshold) ->
      match Committee.min_clan_size ~n ~f ~threshold () with
      | Some nc ->
          let p = Committee.single_clan_failure ~n ~f ~nc in
          Printf.printf "  failure < %-5s -> nc = %-4d (exact failure %s, %d%% of tribe)\n"
            label nc (Rat.to_scientific p) (100 * nc / n)
      | None -> Printf.printf "  failure < %-5s -> impossible at this n\n" label)
    thresholds;

  Printf.printf "\nmulti-clan partitions (paper Eq. 3-7, exact):\n";
  List.iter
    (fun q ->
      if n / q >= 3 then begin
        let nc = n / q in
        let p = Committee.multi_clan_failure ~n ~f ~q ~nc in
        let verdict ok = if ok then "OK" else "too risky" in
        Printf.printf "  q = %d clans of %-4d -> Pr[some clan dishonest] = %-12s" q nc
          (Rat.to_scientific p);
        Printf.printf " [1e-6: %s, 1e-9: %s]\n"
          (verdict (Rat.compare p (Rat.of_ints 1 1_000_000) <= 0))
          (verdict (Rat.compare p (Rat.of_ints 1 1_000_000_000) <= 0))
      end)
    [ 2; 3; 4; 5 ];

  Printf.printf
    "\nNote: Eq. 1's tail counts a 50/50 split as dishonest, so odd clan sizes\n\
     are strictly safer than the next even size (see EXPERIMENTS.md).\n"
