(* Byzantine behaviour demo: what the tribe-assisted broadcast layer
   actually prevents.

   Scene 1 — an equivocating proposer sends two different round-0 proposals
   to two halves of the tribe: neither version can gather 2f+1 ECHOes, so
   no honest party ever delivers either, and the rest of the system keeps
   committing without it.

   Scene 2 — a proposer that withholds its block from most of the clan:
   the fc+1 clan-echo rule guarantees an honest clan member holds the
   block, and the others pull it off the critical path.

     dune exec examples/byzantine_demo.exe *)

open Clanbft
open Clanbft.Sim
open Clanbft.Crypto

let n = 7
let clan = [| 0; 2; 4; 6 |]

let build_world () =
  let engine = Engine.create () in
  let topology = Topology.uniform ~n ~one_way_ms:15.0 in
  let net =
    Net.create ~engine ~topology ~config:{ Net.default_config with jitter = 0.0 }
      ~size:(Msg.wire_size ~n) ~rng:(Util.Rng.create 9L) ()
  in
  let keychain = Keychain.create ~seed:31L ~n in
  let config = Config.make ~n (Config.Single_clan clan) in
  (* Node 0 is Byzantine: we drive it by hand over the raw network. *)
  Net.set_handler net 0 (fun ~src:_ _ -> ());
  let params =
    { Sailfish.default_params with round_timeout = Time.ms 250.; gc_depth = 1_000_000 }
  in
  let nodes =
    Array.init n (fun me ->
        if me = 0 then None
        else
          Some
            (Sailfish.create ~me ~config ~keychain ~engine ~net ~params
               ~make_block:(fun ~round:_ -> [||])
               ~on_commit:(fun ~leader:_ _ -> ())
               ()))
  in
  (engine, net, keychain, nodes)

let forge_proposal keychain ~tag =
  let txns =
    Array.init 2 (fun i -> Transaction.make ~id:((tag * 100) + i) ~client:0 ~created_at:0 ())
  in
  let block = Block.make ~proposer:0 ~round:0 ~txns in
  let vertex =
    Vertex.make ~round:0 ~source:0 ~block_digest:(Block.digest block)
      ~strong_edges:[||] ~weak_edges:[||] ()
  in
  let signature =
    Keychain.sign keychain ~signer:0
      (String.concat "" [ "val|0|0|"; Digest32.to_raw vertex.Vertex.digest ])
  in
  (vertex, block, signature)

let () =
  Printf.printf "=== Scene 1: equivocation ===\n";
  let engine, net, keychain, nodes = build_world () in
  let v1, b1, s1 = forge_proposal keychain ~tag:1 in
  let v2, b2, s2 = forge_proposal keychain ~tag:2 in
  Printf.printf "Byzantine node 0 proposes %s to nodes 1-3 and %s to nodes 4-6\n"
    (Digest32.short v1.Vertex.digest) (Digest32.short v2.Vertex.digest);
  Array.iter (function Some node -> Sailfish.start node | None -> ()) nodes;
  for dst = 1 to 6 do
    let v, b, s = if dst <= 3 then (v1, b1, s1) else (v2, b2, s2) in
    Net.send net ~src:0 ~dst (Msg.Val { vertex = v; block = Some b; signature = s })
  done;
  Engine.run ~until:(Time.s 5.) engine;
  let delivered =
    List.filter_map
      (fun i ->
        match nodes.(i) with
        | Some node -> Sailfish.vertex_of node ~round:0 ~source:0
        | None -> None)
      [ 1; 2; 3; 4; 5; 6 ]
    |> List.filter_map (fun v ->
           (* only count slots that actually entered a DAG *) Some v.Vertex.digest)
  in
  Printf.printf
    "after 5s: %d honest DAGs contain a round-0 vertex from the equivocator\n"
    (List.length delivered);
  (match nodes.(1) with
  | Some node ->
      Printf.printf
        "meanwhile the rest of the tribe reached round %d (liveness intact)\n"
        (Sailfish.current_round node)
  | None -> ());

  Printf.printf "\n=== Scene 2: withheld block ===\n";
  let engine, net, keychain, nodes = build_world () in
  let v, b, s = forge_proposal keychain ~tag:3 in
  Printf.printf
    "Byzantine node 0 sends vertex+block only to clan members 2,4;\n\
     bare vertex to everyone else (clan member 6 gets the vertex, no block)\n";
  Array.iter (function Some node -> Sailfish.start node | None -> ()) nodes;
  for dst = 1 to 6 do
    let block = if dst = 2 || dst = 4 then Some b else None in
    Net.send net ~src:0 ~dst (Msg.Val { vertex = v; block; signature = s })
  done;
  Engine.run ~until:(Time.s 5.) engine;
  (match nodes.(6) with
  | Some node -> (
      match Sailfish.block_of node ~round:0 ~source:0 with
      | Some pulled ->
          Printf.printf
            "clan member 6 obtained the block anyway (pulled, digest %s) — the\n\
             fc+1 clan-echo rule guaranteed an honest holder existed\n"
            (Digest32.short (Block.digest pulled))
      | None -> Printf.printf "clan member 6 could not obtain the block (unexpected)\n")
  | None -> ());
  match nodes.(1) with
  | Some node ->
      Printf.printf "outsider 1 committed the digest only (stores no block): %b\n"
        (Sailfish.block_of node ~round:0 ~source:0 = None)
  | None -> ()
